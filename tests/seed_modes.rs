//! Seed front-end comparison: the minimizer sketch must buy its wire-byte
//! saving without giving up the overlaps the pipeline exists to find.
//!
//! On the committed sampled E. coli 30× workload (the same one
//! `BENCH_pipeline.json` records), the sketch must ship at least 4× fewer
//! seed-stage bytes (bloom + hash) than the two-pass reliable front end
//! while recovering at least 95% of the ground-truth overlap pairs the
//! reliable mode finds. A second test sweeps the determinism matrix —
//! threads × transports × round caps — in minimizer mode.

use dibella::datagen::ecoli_30x_sample_like;
use dibella::prelude::*;
use std::collections::BTreeSet;

const RANKS: usize = 4;

/// Distinct aligned pairs of a run.
fn found_pairs(res: &dibella::pipeline::PipelineResult) -> BTreeSet<(ReadId, ReadId)> {
    res.alignments.iter().map(|a| (a.pair.a, a.pair.b)).collect()
}

/// Seed-stage (bloom + hash) wire bytes of a run.
fn seed_bytes(res: &dibella::pipeline::PipelineResult) -> u64 {
    res.reports
        .iter()
        .map(|r| r.bloom_comm.total_bytes() + r.hash_comm.total_bytes())
        .sum()
}

/// The bench harness's sample-workload configuration (`config_for` with
/// the default environment), pinned here so the test is deterministic.
fn sample_cfg(seed_mode: SeedMode) -> PipelineConfig {
    PipelineConfig {
        k: 17,
        depth: 30.0,
        error_rate: 0.15,
        seed_policy: SeedPolicy::Single,
        max_seeds_per_pair: 4,
        seed_mode,
        ..Default::default()
    }
}

/// The headline trade: ≥ 4× fewer seed-stage bytes, ≥ 95% of the
/// ground-truth pairs the reliable mode finds.
#[test]
fn minimizer_mode_keeps_recall_while_cutting_seed_bytes() {
    let ds = ecoli_30x_sample_like(0.01, 42);
    let truth: BTreeSet<(ReadId, ReadId)> = ds.true_overlaps(2_000).into_iter().collect();
    assert!(!truth.is_empty(), "sample workload must have ground-truth overlaps");

    let reliable = run_pipeline(&ds.reads, RANKS, &sample_cfg(SeedMode::Reliable));
    let minimizer = run_pipeline(&ds.reads, RANKS, &sample_cfg(SeedMode::Minimizer));

    // Byte ratio: reliable ships a bloom pass (8 B/k-mer) plus a hash pass
    // (20 B/k-mer); the sketch ships one hash-record pass over ~2/(w+1) of
    // the windows.
    let (rb, mb) = (seed_bytes(&reliable), seed_bytes(&minimizer));
    let ratio = rb as f64 / mb as f64;
    eprintln!("seed-stage bytes: reliable {rb}, minimizer {mb}, ratio {ratio:.2}x");
    assert!(ratio >= 4.0, "sketch must ship >= 4x fewer seed bytes, got {ratio:.2}x");

    // Recall against the pairs the reliable mode finds that are real
    // overlaps (>= 2 kb of true genome intersection).
    let target: BTreeSet<_> = found_pairs(&reliable).intersection(&truth).copied().collect();
    assert!(!target.is_empty(), "reliable mode must find ground-truth pairs");
    let kept = found_pairs(&minimizer).intersection(&target).count();
    let recall = kept as f64 / target.len() as f64;
    eprintln!(
        "recall: minimizer recovers {kept}/{} reliable-found true pairs ({:.1}%)",
        target.len(),
        recall * 100.0
    );
    assert!(recall >= 0.95, "minimizer recall {recall:.3} below 0.95");
}

/// Minimizer-mode determinism matrix: merged alignment records are
/// bit-identical across threads {1, 2, 4} × transports {shared,
/// sim:cori:2} × round caps {unbounded, 4 KiB}, and per-rank counters
/// match the sequential run within each (transport, cap) cell.
#[test]
fn minimizer_mode_bit_identical_across_threads_transports_and_caps() {
    // Overlapping error-free reads off one deterministic genome (the
    // stage_threads dataset shape).
    let mut state = 0x5EED_0D1Bu64 | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(24 * 60 + 200)).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    let reads: ReadSet = (0..24u32)
        .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 60..][..200].to_vec()))
        .collect();
    let cfg = |threads: usize, transport: TransportKind, cap: usize| PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_multiplicity: Some(24),
        seed_mode: SeedMode::Minimizer,
        minimizer_w: 5,
        threads: Some(threads),
        transport,
        max_exchange_bytes_per_round: cap,
        ..Default::default()
    };

    let ranks = 4;
    let global = run_pipeline(&reads, ranks, &cfg(1, TransportKind::SharedMem, usize::MAX));
    assert!(!global.alignments.is_empty(), "workload must exercise all stages");
    for transport in [TransportKind::SharedMem, "sim:cori:2".parse().expect("transport spec")] {
        for cap in [usize::MAX, 4096] {
            let baseline = run_pipeline(&reads, ranks, &cfg(1, transport, cap));
            assert_eq!(
                baseline.alignments, global.alignments,
                "records diverge across transport={transport} cap={cap}"
            );
            for threads in [2usize, 4] {
                let run = run_pipeline(&reads, ranks, &cfg(threads, transport, cap));
                let at = format!("threads={threads} transport={transport} cap={cap}");
                assert_eq!(run.alignments, baseline.alignments, "records diverge at {at}");
                for (par, seq) in run.reports.iter().zip(&baseline.reports) {
                    let rank = par.rank;
                    assert_eq!(par.hash, seq.hash, "rank {rank} sketch counters, {at}");
                    assert_eq!(par.table_keys, seq.table_keys, "rank {rank} table keys, {at}");
                    assert_eq!(par.filter, seq.filter, "rank {rank} filter stats, {at}");
                    assert_eq!(par.overlap, seq.overlap, "rank {rank} overlap counters, {at}");
                    assert_eq!(par.align, seq.align, "rank {rank} align counters, {at}");
                    assert_eq!(
                        par.hash_comm.total_bytes(),
                        seq.hash_comm.total_bytes(),
                        "rank {rank} sketch bytes, {at}"
                    );
                }
            }
        }
    }
}
