//! Overlap-engine equivalence: the SpGEMM `A·Aᵀ` engine must produce the
//! pairs engine's exact alignments — across seed modes, world sizes,
//! transports, round caps, thread counts, and block sizes — while
//! strictly cutting the overlap stage's wire bytes on seed-rich
//! workloads by consolidating shared-seed records at the source.

use dibella::datagen::ecoli_30x_sample_like;
use dibella::prelude::*;

/// Overlapping error-free reads off one deterministic genome (the
/// stage_threads dataset shape): adjacent reads share 140 bases, so most
/// pairs carry many shared k-mers — the regime where source-side dedup
/// pays.
fn dense_reads() -> ReadSet {
    let mut state = 0x0D1B_E11A_5EEDu64 | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(24 * 60 + 200)).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    (0..24u32)
        .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 60..][..200].to_vec()))
        .collect()
}

fn cfg(
    engine: OverlapEngine,
    seed_mode: SeedMode,
    threads: usize,
    transport: TransportKind,
    cap: usize,
) -> PipelineConfig {
    PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_multiplicity: Some(24),
        seed_mode,
        minimizer_w: 5,
        overlap_engine: engine,
        threads: Some(threads),
        transport,
        max_exchange_bytes_per_round: cap,
        ..Default::default()
    }
}

/// Per-rank engine-invariant overlap counters (everything logical; the
/// physical `rounds` and the wire-record counters legitimately differ).
fn logical_counters(res: &dibella::pipeline::PipelineResult) -> Vec<[u64; 7]> {
    res.reports
        .iter()
        .map(|r| {
            let c = r.overlap;
            [
                c.retained_kmers,
                c.pairs_emitted,
                c.tasks_received,
                c.pairs_consolidated,
                c.seeds_kept,
                c.seeds_dropped,
                c.pairs_chain_dropped,
            ]
        })
        .collect()
}

/// The tentpole sweep: both engines, both seed modes, worlds {1, 2, 4},
/// transports {shared, sim:cori:2}, round caps {unbounded, 4 KiB} — the
/// final alignments and every logical overlap counter are bit-identical,
/// and the exchange accounting (alltoallv calls == executed rounds, peak
/// round ≤ cap + one record) holds for the SpGEMM record stream too.
#[test]
fn spgemm_matches_pairs_across_the_sweep() {
    let reads = dense_reads();
    for seed_mode in [SeedMode::Reliable, SeedMode::Minimizer] {
        for p in [1usize, 2, 4] {
            for transport in
                [TransportKind::SharedMem, "sim:cori:2".parse().expect("transport spec")]
            {
                for cap in [usize::MAX, 4096] {
                    let at = format!("mode={seed_mode} p={p} transport={transport} cap={cap}");
                    let pairs_res = run_pipeline(
                        &reads,
                        p,
                        &cfg(OverlapEngine::Pairs, seed_mode, 1, transport, cap),
                    );
                    let spgemm_res = run_pipeline(
                        &reads,
                        p,
                        &cfg(OverlapEngine::Spgemm, seed_mode, 1, transport, cap),
                    );
                    assert!(!pairs_res.alignments.is_empty(), "dead workload at {at}");
                    assert_eq!(
                        pairs_res.alignments, spgemm_res.alignments,
                        "alignments diverge at {at}"
                    );
                    assert_eq!(
                        logical_counters(&pairs_res),
                        logical_counters(&spgemm_res),
                        "logical counters diverge at {at}"
                    );
                    for r in &spgemm_res.reports {
                        assert_eq!(
                            r.overlap_comm.alltoallv_calls, r.overlap.rounds,
                            "rounds accounting at {at}"
                        );
                        let c = r.overlap;
                        assert_eq!(
                            c.pairs_deduped_at_source,
                            c.pairs_emitted - c.candidate_pairs_emitted,
                            "dedup bookkeeping at {at}"
                        );
                        if cap != usize::MAX {
                            // Records never split: one consolidated pair
                            // record of slack at most (this workload's
                            // records stay well under 2 KiB).
                            assert!(
                                r.overlap_comm.peak_round_bytes <= cap as u64 + 2048,
                                "peak {} over cap at {at}",
                                r.overlap_comm.peak_round_bytes
                            );
                        }
                    }
                    for r in &pairs_res.reports {
                        // The pairs engine ships one record per seed.
                        assert_eq!(r.overlap.candidate_pairs_emitted, r.overlap.pairs_emitted);
                        assert_eq!(r.overlap.pairs_deduped_at_source, 0);
                    }
                }
            }
        }
    }
}

/// SpGEMM-specific determinism: thread counts and row-block sizes never
/// change alignments or any overlap counter (including the wire-record
/// counters — the record stream itself is invariant).
#[test]
fn spgemm_bit_identical_across_threads_and_blocks() {
    let reads = dense_reads();
    let base = cfg(
        OverlapEngine::Spgemm,
        SeedMode::Reliable,
        1,
        TransportKind::SharedMem,
        usize::MAX,
    );
    let baseline = run_pipeline(&reads, 4, &base);
    assert!(!baseline.alignments.is_empty());
    for threads in [1usize, 4] {
        for block in [1usize, 3, 1024] {
            let run = run_pipeline(
                &reads,
                4,
                &PipelineConfig { threads: Some(threads), spgemm_block: block, ..base.clone() },
            );
            let at = format!("threads={threads} block={block}");
            assert_eq!(run.alignments, baseline.alignments, "alignments diverge at {at}");
            for (a, b) in run.reports.iter().zip(&baseline.reports) {
                assert_eq!(a.overlap, b.overlap, "rank {} counters at {at}", a.rank);
            }
        }
    }
}

/// The perf claim, asserted: on the committed sample workload the SpGEMM
/// engine ships strictly fewer overlap-stage bytes than the pairs engine
/// (identical alignments), with a source dedup factor > 1.
#[test]
fn spgemm_cuts_overlap_bytes_on_the_sample_workload() {
    let ds = ecoli_30x_sample_like(0.01, 42);
    let sample = |engine| PipelineConfig {
        k: 17,
        depth: 30.0,
        error_rate: 0.15,
        seed_policy: SeedPolicy::Single,
        max_seeds_per_pair: 4,
        overlap_engine: engine,
        ..Default::default()
    };
    let pairs_res = run_pipeline(&ds.reads, 4, &sample(OverlapEngine::Pairs));
    let spgemm_res = run_pipeline(&ds.reads, 4, &sample(OverlapEngine::Spgemm));
    assert_eq!(pairs_res.alignments, spgemm_res.alignments);

    let overlap_bytes = |res: &dibella::pipeline::PipelineResult| -> u64 {
        res.reports.iter().map(|r| r.overlap_comm.total_bytes()).sum()
    };
    let (pb, sb) = (overlap_bytes(&pairs_res), overlap_bytes(&spgemm_res));
    let emitted: u64 = spgemm_res.reports.iter().map(|r| r.overlap.pairs_emitted).sum();
    let records: u64 =
        spgemm_res.reports.iter().map(|r| r.overlap.candidate_pairs_emitted).sum();
    let dup_factor = emitted as f64 / records as f64;
    eprintln!(
        "overlap bytes: pairs {pb}, spgemm {sb} ({:.2}x); seed dup factor {dup_factor:.2}",
        pb as f64 / sb as f64
    );
    assert!(sb < pb, "spgemm must ship strictly fewer overlap bytes ({sb} vs {pb})");
    assert!(dup_factor > 1.0, "expected source dedup on the sample workload");
}
