//! Determinism of the hybrid-parallel alignment stage on a multi-rank
//! world: for any `align_threads` setting, every rank's alignment records
//! **and** work counters must be bit-identical to the sequential
//! (`align_threads = 1`) run. The executor guarantees this by sharding
//! tasks into fixed-size batches and merging results in batch order — this
//! test is the end-to-end check of that guarantee across the full SPMD
//! pipeline (4 ranks × {1, 2, 4} threads).

use dibella::prelude::*;

/// Overlapping reads off one deterministic pseudo-random genome.
fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(n * stride + read_len))
        .map(|_| b"ACGT"[(rnd() % 4) as usize])
        .collect();
    (0..n as u32)
        .map(|i| {
            let s = i as usize * stride;
            Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
        })
        .collect()
}

fn cfg(align_threads: usize) -> PipelineConfig {
    PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_multiplicity: Some(24),
        align_threads,
        ..Default::default()
    }
}

#[test]
fn parallel_alignment_matches_sequential_on_multi_rank_world() {
    let reads = dataset(24, 200, 60, 0xA11E);
    let ranks = 4;

    let baseline = run_pipeline(&reads, ranks, &cfg(1));
    assert!(
        !baseline.alignments.is_empty(),
        "workload must exercise the alignment stage"
    );

    for threads in [2usize, 4] {
        let run = run_pipeline(&reads, ranks, &cfg(threads));
        assert_eq!(
            run.alignments, baseline.alignments,
            "alignment records diverge at align_threads = {threads}"
        );
        for (par, seq) in run.reports.iter().zip(&baseline.reports) {
            assert_eq!(
                par.align, seq.align,
                "rank {} align counters diverge at align_threads = {threads}",
                par.rank
            );
        }
    }
}
