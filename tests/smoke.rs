//! Fast CI smoke signal: one tiny end-to-end pipeline run on a 2-rank
//! world, designed to finish in well under 5 seconds so a broken build is
//! caught before the heavier `end_to_end` / `model_projection` suites run.
//!
//! `DIBELLA_TRANSPORT` (`shared` | `sim:<platform>[:<ranks_per_node>]`)
//! selects the communication backend, `DIBELLA_ROUND_MB` caps the
//! streaming-exchange rounds, and `DIBELLA_THREADS` sets the intra-rank
//! thread count of every stage, so CI smokes the real and simulated
//! transports, the multi-round exchange path *and* the threaded stage
//! executor with the same assertions. `DIBELLA_SEED_MODE`
//! (`reliable` | `minimizer`) selects the seed front end and
//! `DIBELLA_OVERLAP_ENGINE` (`pairs` | `spgemm`) the overlap exchange
//! engine, so the same smoke also covers the minimizer sketch path and
//! the SpGEMM overlap path. A `faulty:...` transport
//! runs the same assertions under injected faults — the hardened
//! exchange layer must make chaos invisible to all of them — and
//! `DIBELLA_EXPECT_FAULTS=1` additionally requires that the fault
//! counters prove faults were actually injected and survived.

use dibella::prelude::*;
use std::time::Instant;

/// Tiny deterministic dataset → 2-rank pipeline → overlaps found, reports
/// consistent, and the whole thing is fast.
#[test]
fn two_rank_pipeline_smoke() {
    let t0 = Instant::now();

    // A 4 kb pseudo-random genome sliced into 30 overlapping error-free
    // reads (stride 120, length 400: every adjacent pair shares 280 bases).
    let mut state = 0x5EED_CAFEu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..4_000).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    let reads: ReadSet = (0..30u32)
        .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 120..][..400].to_vec()))
        .collect();

    let transport: TransportKind = std::env::var("DIBELLA_TRANSPORT")
        .ok()
        .map(|v| v.parse().expect("DIBELLA_TRANSPORT"))
        .unwrap_or_default();
    let round_bytes: usize = std::env::var("DIBELLA_ROUND_MB")
        .ok()
        .map(|v| {
            let mb: f64 = v
                .parse()
                .ok()
                .filter(|&m| m > 0.0)
                .expect("DIBELLA_ROUND_MB: positive MiB");
            (mb * (1 << 20) as f64) as usize
        })
        .unwrap_or(usize::MAX);
    let cfg = PipelineConfig {
        k: 15,
        depth: 3.0,
        error_rate: 0.0,
        max_multiplicity: Some(16),
        transport,
        max_exchange_bytes_per_round: round_bytes,
        threads: Some(PipelineConfig::env_threads()),
        seed_mode: PipelineConfig::env_seed_mode(),
        overlap_engine: PipelineConfig::env_overlap_engine(),
        ..Default::default()
    };
    let res = run_pipeline(&reads, 2, &cfg);

    // Adjacent slices overlap by 280 bases — the pipeline must find pairs
    // and align them with positive scores.
    assert!(res.n_pairs() >= 20, "expected >= 20 overlap pairs, got {}", res.n_pairs());
    assert!(!res.alignments.is_empty());
    assert!(res.alignments.iter().all(|a| a.score > 0 && a.pair.a < a.pair.b));
    assert_eq!(res.reports.len(), 2, "one report per rank");
    // Streaming-exchange accounting holds at any round cap: each stage's
    // irregular-collective count equals its executed rounds, and no round
    // exceeded the configured byte cap by more than one record.
    for r in &res.reports {
        assert_eq!(r.bloom_comm.alltoallv_calls, r.bloom.rounds);
        assert_eq!(r.hash_comm.alltoallv_calls, r.hash.rounds);
        assert_eq!(r.overlap_comm.alltoallv_calls, r.overlap.rounds);
        assert_eq!(r.align_comm.alltoallv_calls, r.align.rounds);
        if round_bytes != usize::MAX {
            for c in [&r.bloom_comm, &r.hash_comm, &r.overlap_comm, &r.align_comm] {
                assert!(c.peak_round_bytes <= round_bytes as u64 + 8 + 400);
            }
        }
    }

    // Robustness counters: a clean transport must record none; a chaos
    // transport must have survived whatever it injected (every assertion
    // above already ran on its output). CI's chaos matrix sets
    // DIBELLA_EXPECT_FAULTS=1 to insist that its fixed-seed spec really
    // did inject something — guarding against a silently disabled
    // injector passing the smoke vacuously.
    let survived: u64 = res
        .reports
        .iter()
        .map(|r| {
            let c = r.total_comm();
            c.frames_corrupt_detected + c.frames_retransmitted + c.duplicates_dropped
                + c.wait_timeouts
        })
        .sum();
    if matches!(cfg.transport, TransportKind::Faulty(_)) {
        if std::env::var("DIBELLA_EXPECT_FAULTS").as_deref() == Ok("1") {
            assert!(survived > 0, "chaos transport injected no faults");
        }
    } else {
        assert_eq!(survived, 0, "clean transport recorded fault counters");
    }

    let elapsed = t0.elapsed();
    assert!(elapsed.as_secs_f64() < 5.0, "smoke test too slow: {elapsed:?}");
}
