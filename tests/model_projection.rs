//! Integration tests of the cross-architecture projection: the paper's
//! qualitative cross-platform facts must hold when real pipeline runs are
//! projected through the cost model.

use dibella::datagen::ecoli_30x_like;
use dibella::netmodel::{NodeMapping, AWS, CORI, EDISON, TITAN};
use dibella::pipeline::{project, run_pipeline, Stage};
use dibella::prelude::*;

fn reports_for(ranks: usize) -> std::sync::Arc<Vec<dibella::pipeline::RankReport>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Vec<dibella::pipeline::RankReport>>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&ranks) {
        return Arc::clone(hit);
    }
    let ds = ecoli_30x_like(0.004, 42);
    let cfg = PipelineConfig { k: 17, depth: 30.0, error_rate: 0.15, ..Default::default() };
    let reports = Arc::new(run_pipeline(&ds.reads, ranks, &cfg).reports);
    cache.lock().unwrap().insert(ranks, Arc::clone(&reports));
    reports
}

/// §10: "the more powerful Haswell CPU nodes and network on Cori (XC40)
/// giving superior overall performance" — at equal node counts the full
/// pipeline is fastest on Cori.
#[test]
fn cori_wins_overall() {
    let nodes = 2usize;
    let mut totals = Vec::new();
    for p in [&CORI, &EDISON, &TITAN, &AWS] {
        let mapping = NodeMapping::for_platform(p, nodes);
        let reports = reports_for(mapping.ranks());
        let proj = project(p, mapping, &reports);
        totals.push((p.name, proj.total_seconds()));
    }
    let cori = totals[0].1;
    for &(name, t) in &totals[1..] {
        assert!(cori < t, "Cori ({cori:.4}s) not faster than {name} ({t:.4}s)");
    }
}

/// §5: "the AWS node has similar performance to a Titan CPU node" — at a
/// single node (16 ranks each) their pipeline times are within 2×.
#[test]
fn aws_similar_to_titan_single_node() {
    let mapping = NodeMapping::new(1, 16);
    let reports = reports_for(16);
    let titan = project(&TITAN, mapping, &reports).total_seconds();
    let aws = project(&AWS, mapping, &reports).total_seconds();
    let ratio = titan / aws;
    assert!((0.5..2.0).contains(&ratio), "Titan/AWS = {ratio:.2}");
}

/// §10 and Fig. 12: exchange efficiency degrades fastest on the commodity
/// AWS network.
#[test]
fn aws_exchange_degrades_fastest() {
    let degradation = |p: &'static dibella::netmodel::Platform| {
        let m1 = NodeMapping::for_platform(p, 1);
        let m4 = NodeMapping::for_platform(p, 4);
        let e1 = project(p, m1, &reports_for(m1.ranks())).exchange_seconds();
        let e4 = project(p, m4, &reports_for(m4.ranks())).exchange_seconds();
        // Strong-scaling exchange efficiency 1 → 4 nodes.
        e1 / (4.0 * e4)
    };
    let aws = degradation(&AWS);
    let cori = degradation(&CORI);
    assert!(
        aws < cori,
        "AWS exchange efficiency ({aws:.3}) should degrade below Cori's ({cori:.3})"
    );
}

/// §6/§10: the first-Alltoallv anomaly — the Bloom stage's exchange costs
/// more than the hash stage's despite 2.5× less volume.
#[test]
fn first_alltoallv_anomaly_reproduced() {
    let mapping = NodeMapping::for_platform(&CORI, 1);
    let reports = reports_for(mapping.ranks());
    // Sanity: the hash stage really moves 2.5x the bytes.
    let bb: u64 = reports.iter().map(|r| r.bloom_comm.total_bytes()).sum();
    let hb: u64 = reports.iter().map(|r| r.hash_comm.total_bytes()).sum();
    assert_eq!(hb, bb * 20 / 8);
    let proj = project(&CORI, mapping, &reports);
    assert!(
        proj.stage(Stage::Bloom).max_exchange() > proj.stage(Stage::Hash).max_exchange(),
        "Bloom exchange should absorb the first-call setup cost"
    );
}

/// Fig. 8: the alignment stage's load imbalance exceeds 1 and grows as
/// ranks multiply (fewer tasks per rank → larger variance), while the
/// task-count balance itself stays near-perfect (§9: "less than 0.002%"
/// — near-perfect at paper scale; tasks-per-rank spread stays tiny here).
#[test]
fn alignment_imbalance_grows_with_scale() {
    let im = |nodes: usize| {
        let mapping = NodeMapping::for_platform(&CORI, nodes);
        let reports = reports_for(mapping.ranks());
        project(&CORI, mapping, &reports)
            .stage(Stage::Align)
            .imbalance()
    };
    let i1 = im(1);
    let i8 = im(8);
    assert!(i1 >= 1.0 && i8 >= 1.0);
    assert!(i8 > i1, "imbalance should grow: {i1:.3} → {i8:.3}");
}

/// The number of alignments per rank is balanced by the odd/even
/// heuristic even when their costs are not (§8–§9).
#[test]
fn task_count_balance() {
    let reports = reports_for(8);
    let counts: Vec<u64> = reports.iter().map(|r| r.align.alignments).collect();
    let max = *counts.iter().max().unwrap() as f64;
    let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    assert!(avg > 0.0);
    assert!(max / avg < 1.35, "task counts imbalanced: {counts:?}");
}

/// Strong scaling helps every platform (Fig. 13: "all of the systems show
/// increasing performance on increased node counts").
#[test]
fn everyone_speeds_up_with_nodes() {
    for p in [&CORI, &EDISON, &TITAN, &AWS] {
        let m1 = NodeMapping::for_platform(p, 1);
        let m8 = NodeMapping::for_platform(p, 8);
        let t1 = project(p, m1, &reports_for(m1.ranks())).total_seconds();
        let t8 = project(p, m8, &reports_for(m8.ranks())).total_seconds();
        assert!(t8 < t1, "{}: {t1:.4} → {t8:.4}", p.name);
    }
}

/// §9 future work: homing tasks with the longer read's owner cuts the
/// alignment-stage read-exchange volume versus the parity heuristic (the
/// shorter sequence is the one fetched), at some cost in task balance.
#[test]
fn longer_read_placement_moves_fewer_bytes() {
    use dibella::overlap::TaskPlacement;
    let ds = ecoli_30x_like(0.004, 42);
    let base = PipelineConfig { k: 17, depth: 30.0, error_rate: 0.15, ..Default::default() };
    let parity = run_pipeline(&ds.reads, 8, &base);
    let longer = run_pipeline(
        &ds.reads,
        8,
        &PipelineConfig { placement: TaskPlacement::LongerRead, ..base },
    );
    // Same science: identical pair sets.
    assert_eq!(parity.n_pairs(), longer.n_pairs());
    let fetched = |r: &dibella::pipeline::PipelineResult| -> u64 {
        r.reports.iter().map(|x| x.align.read_bytes_fetched).sum()
    };
    let (fp, fl) = (fetched(&parity), fetched(&longer));
    assert!(
        fl < fp,
        "longer-read placement fetched {fl} bytes vs parity {fp}"
    );
}
