//! Edge-case and failure-injection tests across the public API surface:
//! degenerate inputs the pipeline must survive (or reject loudly).

use dibella::prelude::*;

fn cfg_k(k: usize) -> PipelineConfig {
    PipelineConfig {
        k,
        depth: 10.0,
        error_rate: 0.1,
        max_multiplicity: Some(16),
        ..Default::default()
    }
}

/// Reads shorter than k contribute no k-mers but must flow through every
/// stage without panicking.
#[test]
fn reads_shorter_than_k() {
    let reads: ReadSet = (0..6u32)
        .map(|i| Read::new(i, format!("r{i}"), vec![b'A'; 5]))
        .collect();
    let res = run_pipeline(&reads, 3, &cfg_k(15));
    assert_eq!(res.alignments.len(), 0);
    assert_eq!(res.n_pairs(), 0);
}

/// A single read cannot overlap anything.
#[test]
fn single_read_dataset() {
    let reads: ReadSet = vec![Read::new(0, "only", vec![b'A'; 500])]
        .into_iter()
        .collect();
    let res = run_pipeline(&reads, 2, &cfg_k(11));
    assert_eq!(res.n_pairs(), 0);
}

/// More ranks than reads: most ranks own nothing, collectives must still
/// match.
#[test]
fn more_ranks_than_reads() {
    let mut state = 0x5EEDu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..400).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    let reads: ReadSet = (0..3u32)
        .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 100..][..200].to_vec()))
        .collect();
    let res = run_pipeline(&reads, 16, &cfg_k(11));
    assert!(res.n_pairs() >= 2, "adjacent overlaps missed");
    assert_eq!(res.reports.len(), 16);
}

/// Reads consisting only of ambiguous bases yield no k-mers at all.
#[test]
fn all_ambiguous_reads() {
    let reads: ReadSet = (0..4u32)
        .map(|i| Read::new(i, format!("n{i}"), vec![b'N'; 300]))
        .collect();
    let res = run_pipeline(&reads, 2, &cfg_k(11));
    assert_eq!(res.n_pairs(), 0);
    let kmers: u64 = res.reports.iter().map(|r| r.bloom.kmers_parsed).sum();
    assert_eq!(kmers, 0);
}

/// Identical duplicate reads: every k-mer recurs `n` times; with m below
/// n everything is filtered, with m above n every pair aligns full-length.
#[test]
fn duplicate_reads_follow_m() {
    let mut state = 0xFEEDu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let seq: Vec<u8> = (0..300).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    let reads: ReadSet = (0..6u32)
        .map(|i| Read::new(i, format!("dup{i}"), seq.clone()))
        .collect();
    // m = 4 < 6 copies → all k-mers are "repeats", no overlaps.
    let strict = run_pipeline(&reads, 2, &PipelineConfig { max_multiplicity: Some(4), ..cfg_k(11) });
    assert_eq!(strict.n_pairs(), 0);
    // m = 16 > 6 → all 15 pairs, each aligned end to end.
    let lax = run_pipeline(&reads, 2, &PipelineConfig { max_multiplicity: Some(16), ..cfg_k(11) });
    assert_eq!(lax.n_pairs(), 15);
    assert!(lax.alignments.iter().all(|a| a.score == 300));
}

/// Malformed FASTQ through the parallel-input path fails loudly, not
/// silently. (Single rank: in a multi-rank world a rank panic leaves
/// peers blocked at the barrier, like an aborted MPI job — the CommWorld
/// docs call this hazard out.)
#[test]
#[should_panic(expected = "malformed FASTQ")]
fn malformed_fastq_panics() {
    let bad = b"@r0\nACGT\nOOPS\nIIII\n".to_vec();
    let _ = run_pipeline_fastq(&bad, 1, &cfg_k(11));
}

/// Empty FASTQ input: zero reads, zero output, no hangs.
#[test]
fn empty_fastq() {
    let res = run_pipeline_fastq(b"", 3, &cfg_k(11));
    assert_eq!(res.alignments.len(), 0);
    assert_eq!(res.reports.len(), 3);
}

/// The x-drop parameter must be positive — misconfiguration is caught at
/// the kernel boundary.
#[test]
#[should_panic(expected = "x-drop threshold must be positive")]
fn zero_xdrop_rejected() {
    let _ = dibella::align::extend_xdrop(b"ACGT", b"ACGT", dibella::align::Scoring::bella(), 0);
}

/// Reverse-complement palindromic content (seeds hitting themselves) must
/// not produce self-pairs.
#[test]
fn no_self_pairs_ever() {
    let mut state = 0xABCu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..2_000).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    // Reads with internal repeat structure (same k-mer twice per read).
    let reads: ReadSet = (0..8u32)
        .map(|i| {
            let mut seq = genome[i as usize * 150..][..400].to_vec();
            let dup: Vec<u8> = seq[..40].to_vec();
            seq.extend_from_slice(&dup);
            Read::new(i, format!("r{i}"), seq)
        })
        .collect();
    let res = run_pipeline(&reads, 3, &cfg_k(11));
    assert!(res.alignments.iter().all(|a| a.pair.a != a.pair.b));
}
