//! Integration tests of the streaming `RoundExchange` engine at pipeline
//! scope: capping the per-round exchange bytes changes *how* the stages
//! communicate (more, smaller, pipelined rounds) but never *what* they
//! compute — alignments and per-destination traffic totals are
//! bit-identical at every `(ranks, transport, round cap)` combination,
//! and the per-round memory high-water mark respects the cap.

use dibella::prelude::*;

/// Overlapping reads off one deterministic pseudo-random genome. The
/// small stride makes each read overlap its four neighbours on both
/// sides, so at P > 1 plenty of alignment tasks reference remote reads —
/// exercising the round-bounded read redistribution, not just the k-mer
/// passes.
fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(n * stride + read_len))
        .map(|_| b"ACGT"[(rnd() % 4) as usize])
        .collect();
    (0..n as u32)
        .map(|i| {
            let s = i as usize * stride;
            Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
        })
        .collect()
}

fn cfg(cap: usize, transport: TransportKind) -> PipelineConfig {
    PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_multiplicity: Some(48),
        max_exchange_bytes_per_round: cap,
        transport,
        ..Default::default()
    }
}

const READ_LEN: usize = 200;
/// Tiny enough that every stage needs several rounds on this dataset
/// (even one 8-byte k-mer round cap would be ~32 records).
const TINY_CAP: usize = 256;
/// The largest wire record any stage ships: a stage-4 reply (8-byte
/// header + full read).
const MAX_RECORD: u64 = 8 + READ_LEN as u64;

fn stage_comms(r: &dibella::pipeline::RankReport) -> [&dibella::comm::CommStats; 4] {
    [&r.bloom_comm, &r.hash_comm, &r.overlap_comm, &r.align_comm]
}

#[test]
fn round_cap_sweep_is_bit_identical() {
    let reads = dataset(16, READ_LEN, 40, 13);
    let transports = [
        TransportKind::SharedMem,
        TransportKind::SimNet(SimNetConfig { platform: PlatformId::CoriXC40, ranks_per_node: 2 }),
    ];
    let baseline = run_pipeline(&reads, 1, &cfg(usize::MAX, TransportKind::SharedMem));
    assert!(baseline.alignments.len() >= 20, "dataset must produce work");

    for p in [1usize, 2, 4] {
        // Per-P traffic reference: the unbounded shared-memory run.
        let reference = run_pipeline(&reads, p, &cfg(usize::MAX, TransportKind::SharedMem));
        assert_eq!(reference.alignments, baseline.alignments, "P={p} default");

        for transport in transports {
            for cap in [TINY_CAP, 64 << 10, usize::MAX] {
                let res = run_pipeline(&reads, p, &cfg(cap, transport));
                // The headline invariant: science never moves.
                assert_eq!(
                    res.alignments, baseline.alignments,
                    "P={p} cap={cap} transport={transport}: alignments diverged"
                );
                for (got, want) in res.reports.iter().zip(&reference.reports) {
                    for (si, (cg, cw)) in
                        stage_comms(got).iter().zip(stage_comms(want)).enumerate()
                    {
                        // Per-destination byte totals are independent of
                        // the round split and of the transport.
                        assert_eq!(
                            cg.dest_bytes, cw.dest_bytes,
                            "P={p} cap={cap} transport={transport} rank {} stage {si}",
                            got.rank
                        );
                        // Rounds (= irregular calls) are what the cap moves;
                        // the peak round volume must respect it.
                        if cap != usize::MAX {
                            assert!(
                                cg.peak_round_bytes <= cap as u64 + MAX_RECORD,
                                "P={p} cap={cap} rank {} stage {si}: peak {}",
                                got.rank,
                                cg.peak_round_bytes,
                            );
                        }
                    }
                    // At the default (unbounded) cap the whole traffic
                    // profile — messages and call counts included — matches
                    // the reference exactly.
                    if cap == usize::MAX {
                        for (cg, cw) in stage_comms(got).iter().zip(stage_comms(want)) {
                            assert_eq!(cg.dest_msgs, cw.dest_msgs);
                            assert_eq!(cg.alltoallv_calls, cw.alltoallv_calls);
                            assert_eq!(cg.peak_round_bytes, cw.peak_round_bytes);
                        }
                    }
                }
                // The tiny cap must genuinely exercise the multi-round
                // path in every stage (stage 4 needs remote reads, so at
                // P = 1 its two exchanges stay two trivial rounds).
                if cap == TINY_CAP {
                    for r in &res.reports {
                        assert!(r.bloom.rounds >= 3, "P={p}: bloom rounds {}", r.bloom.rounds);
                        assert!(r.hash.rounds >= 3, "P={p}: hash rounds {}", r.hash.rounds);
                        assert!(
                            r.overlap.rounds >= 3,
                            "P={p}: overlap rounds {}",
                            r.overlap.rounds
                        );
                        if p > 1 {
                            assert!(
                                r.align.rounds >= 3,
                                "P={p}: align rounds {}",
                                r.align.rounds
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The FASTQ input path drives the same streamed stages; a capped run off
/// raw bytes must reproduce the in-memory result exactly.
#[test]
fn round_cap_matches_across_input_paths() {
    let reads = dataset(12, READ_LEN, 40, 29);
    let mut fastq = Vec::new();
    dibella::io::write_fastq(&mut fastq, &reads).unwrap();
    let capped = cfg(TINY_CAP, TransportKind::SharedMem);
    let mem = run_pipeline(&reads, 3, &capped);
    let via_fastq = run_pipeline_fastq(&fastq, 3, &capped);
    assert_eq!(mem.alignments, via_fastq.alignments);
}
