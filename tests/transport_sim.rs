//! Integration tests of the pluggable transport layer: running the full
//! pipeline over the netmodel-driven `SimNet` backend must change *only*
//! the reported exchange timings — never the science — and those timings
//! must agree with the analytic cross-architecture projection, making the
//! Figure 3–13 model validatable against an executed run.

use dibella::netmodel::{collective_latency_s, NodeMapping, CORI};
use dibella::pipeline::{project, RankReport, Stage};
use dibella::prelude::*;

/// Overlapping reads off one deterministic pseudo-random genome.
fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(n * stride + read_len))
        .map(|_| b"ACGT"[(rnd() % 4) as usize])
        .collect();
    (0..n as u32)
        .map(|i| {
            let s = i as usize * stride;
            Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
        })
        .collect()
}

fn cfg(transport: TransportKind) -> PipelineConfig {
    PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_kmers_per_round: 1 << 20,
        max_multiplicity: Some(24),
        transport,
        ..Default::default()
    }
}

fn sim(platform: PlatformId, ranks_per_node: usize) -> TransportKind {
    TransportKind::SimNet(SimNetConfig { platform, ranks_per_node })
}

/// Per-stage traffic of one rank, in pipeline order.
fn stage_comms(r: &RankReport) -> [&dibella::comm::CommStats; 4] {
    [&r.bloom_comm, &r.hash_comm, &r.overlap_comm, &r.align_comm]
}

/// The headline invariant: `SimNet` changes timing, never payloads.
/// Alignments and every traffic counter are byte-identical to `SharedMem`
/// at every world size.
#[test]
fn simnet_results_byte_identical_to_sharedmem() {
    let reads = dataset(12, 150, 50, 7);
    for p in [1usize, 2, 4] {
        let real = run_pipeline(&reads, p, &cfg(TransportKind::SharedMem));
        let simulated = run_pipeline(&reads, p, &cfg(sim(PlatformId::Aws, 2)));
        assert_eq!(
            real.alignments, simulated.alignments,
            "P={p}: SimNet must not change alignments"
        );
        for (a, b) in real.reports.iter().zip(&simulated.reports) {
            for (ca, cb) in stage_comms(a).iter().zip(stage_comms(b)) {
                assert_eq!(ca.dest_bytes, cb.dest_bytes, "P={p} rank {}", a.rank);
                assert_eq!(ca.dest_msgs, cb.dest_msgs);
                assert_eq!(ca.alltoallv_calls, cb.alltoallv_calls);
                assert_eq!(ca.dense_collectives, cb.dense_collectives);
            }
        }
    }
}

/// The paper's cross-platform argument, executed rather than projected: the
/// same run reports strictly larger exchange walls on the Ethernet-like
/// AWS platform than on Aries-backed Cori, per rank and per stage.
#[test]
fn ethernet_exchange_strictly_slower_than_aries() {
    let reads = dataset(12, 150, 50, 7);
    let aries = run_pipeline(&reads, 4, &cfg(sim(PlatformId::CoriXC40, 2)));
    let ethernet = run_pipeline(&reads, 4, &cfg(sim(PlatformId::Aws, 2)));
    for (c, a) in aries.reports.iter().zip(&ethernet.reports) {
        for (sc, sa) in stage_comms(c).iter().zip(stage_comms(a)) {
            assert!(
                sa.exchange_wall > sc.exchange_wall,
                "rank {}: AWS {:?} should exceed Cori {:?}",
                c.rank,
                sa.exchange_wall,
                sc.exchange_wall
            );
        }
        assert!(a.total_exchange() > c.total_exchange());
    }
}

/// End-to-end validation of the analytic model: the `exchange_wall` an
/// executed `SimNet` run reports must match what `model::project` predicts
/// from the same run's counters. The only accounting difference is that
/// `SimNet` also charges dense collectives one latency each (the analytic
/// model folds those into nothing), so the expectation adds
/// `dense_collectives × (α + α_rank·P)` per rank and stage.
#[test]
fn simnet_timings_agree_with_model_projection() {
    let reads = dataset(12, 150, 50, 7);
    let ranks_per_node = 2;
    let p = 4;
    let res = run_pipeline(&reads, p, &cfg(sim(PlatformId::CoriXC40, ranks_per_node)));

    // With the round cap far above this workload, each k-mer pass issues
    // exactly one alltoallv — so SimNet's per-call first-Alltoallv charge
    // equals the model's per-average-call one and the comparison is exact
    // up to nanosecond rounding.
    for r in &res.reports {
        assert_eq!(r.bloom_comm.alltoallv_calls, 1, "expected a single Bloom round");
    }

    let mapping = NodeMapping::new(p / ranks_per_node, ranks_per_node);
    let proj = project(&CORI, mapping, &res.reports);
    let lat = collective_latency_s(&CORI, p);
    for (si, stage) in Stage::ALL.iter().enumerate() {
        let modeled = &proj.stage(*stage).exchange_s;
        for r in &res.reports {
            let comm = stage_comms(r)[si];
            let expected = modeled[r.rank] + comm.dense_collectives as f64 * lat;
            let got = comm.exchange_wall.as_secs_f64();
            let rel = (got - expected).abs() / expected.max(1e-12);
            assert!(
                rel < 1e-2,
                "{} rank {}: executed {got:.3e}s vs modeled {expected:.3e}s (rel {rel:.3e})",
                stage.name(),
                r.rank
            );
        }
    }
}

/// A single simulated rank still pays latency and on-node copies but has
/// zero off-rank traffic — the world-size edge case of the new backend.
#[test]
fn simnet_single_rank_world() {
    let reads = dataset(6, 120, 40, 5);
    let res = run_pipeline(&reads, 1, &cfg(sim(PlatformId::TitanXK7, 1)));
    assert!(!res.alignments.is_empty());
    let r = &res.reports[0];
    assert_eq!(r.bloom_comm.remote_bytes(0), 0);
    assert!(r.bloom_comm.exchange_wall.as_secs_f64() > 0.0);
}
