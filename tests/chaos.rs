//! Chaos soak: the hardened exchange layer must make the pipeline's
//! output a pure function of its input — independent of the transport
//! mangling frames underneath it.
//!
//! The sweep runs the full four-stage pipeline under the fault-injecting
//! `FaultyNet` transport across fault mixes (corrupt-only, drop-only,
//! mixed) × world sizes {1, 2, 4} × inner transports {shared memory,
//! simulated Cori} × round caps {monolithic, streaming}, and checks,
//! against a fault-free run of the same configuration:
//!
//! * alignments are **bit-identical**;
//! * every stage's work counters, filter statistics, payload byte
//!   accounting, collective counts, and round peaks are identical —
//!   recovery traffic must never leak into the logical accounting;
//! * the robustness counters are nonzero exactly when faults were
//!   injected (and zero on clean and zero-rate transports);
//! * a run whose retries are exhausted fails the stage cleanly; and
//! * a chaos run's checkpoints resume to byte-identical output.
//!
//! Fault rates are scaled by `1/P²` so the per-round clean probability
//! `(1-f)^(P²)` stays ≈ 0.7 at every world size: convergence in ~1.4
//! attempts, retry-exhaustion odds ~1e-5 per round — and since injection
//! is a pure function of the seed, a passing sweep stays passing.

use dibella::prelude::*;

/// Overlapping error-free reads off one deterministic pseudo-random
/// genome (same construction as the smoke test, different seed).
fn dataset() -> ReadSet {
    let mut state = 0xC4A0_5EEDu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..3_000).map(|_| b"ACGT"[(rnd() % 4) as usize]).collect();
    (0..24u32)
        .map(|i| Read::new(i, format!("r{i}"), genome[i as usize * 110..][..300].to_vec()))
        .collect()
}

fn cfg(transport: TransportKind, streaming: bool) -> PipelineConfig {
    PipelineConfig {
        k: 15,
        error_rate: 0.0,
        max_multiplicity: Some(24),
        transport,
        // The streaming variant forces many small exchange rounds — more
        // frames, more injection opportunities, and coverage of the
        // round-capped recovery path.
        max_kmers_per_round: if streaming { 256 } else { usize::MAX },
        max_exchange_bytes_per_round: if streaming { 48 << 10 } else { usize::MAX },
        ..Default::default()
    }
}

/// Fault spec with rates scaled to the world size (see module docs).
fn spec_for(kind: &str, p: usize) -> String {
    let scale = |base: f64| base / (p * p) as f64;
    match kind {
        "corrupt" => format!("corrupt={:.4}", scale(0.3)),
        "drop" => format!("drop={:.4}", scale(0.3)),
        "mixed" => format!(
            "corrupt={:.4},drop={:.4},dup={:.4},reorder={:.4}",
            scale(0.15),
            scale(0.08),
            scale(0.08),
            scale(0.05)
        ),
        other => panic!("unknown spec kind {other}"),
    }
}

/// Sum of the injected-and-survived fault counters over all ranks and
/// stages.
fn faults_survived(res: &PipelineResult) -> u64 {
    res.reports
        .iter()
        .map(|r| {
            let c = r.total_comm();
            c.frames_corrupt_detected + c.frames_retransmitted + c.duplicates_dropped
                + c.wait_timeouts
        })
        .sum()
}

/// Everything the chaos run must reproduce bit-identically from the
/// clean run: alignments, per-stage work counters, filter statistics,
/// and the *logical* traffic accounting (payload bytes, collective
/// counts, round peaks — recovery traffic rides outside these).
fn assert_work_identical(label: &str, chaos: &PipelineResult, clean: &PipelineResult) {
    assert_eq!(chaos.alignments, clean.alignments, "{label}: alignments diverged");
    assert_eq!(chaos.reports.len(), clean.reports.len());
    for (c, f) in chaos.reports.iter().zip(&clean.reports) {
        assert_eq!(c.bloom, f.bloom, "{label}: bloom counters rank {}", c.rank);
        assert_eq!(c.hash, f.hash, "{label}: hash counters rank {}", c.rank);
        assert_eq!(c.overlap, f.overlap, "{label}: overlap counters rank {}", c.rank);
        assert_eq!(c.align, f.align, "{label}: align counters rank {}", c.rank);
        assert_eq!(c.filter, f.filter, "{label}: filter stats rank {}", c.rank);
        assert_eq!(c.table_keys, f.table_keys, "{label}: table keys rank {}", c.rank);
        for (cc, fc) in c.stage_comms().iter().zip(f.stage_comms()) {
            assert_eq!(cc.dest_bytes, fc.dest_bytes, "{label}: payload bytes rank {}", c.rank);
            assert_eq!(cc.dest_msgs, fc.dest_msgs, "{label}: payload msgs rank {}", c.rank);
            assert_eq!(
                cc.alltoallv_calls, fc.alltoallv_calls,
                "{label}: collective count rank {}",
                c.rank
            );
            assert_eq!(
                cc.peak_round_bytes, fc.peak_round_bytes,
                "{label}: round peak rank {}",
                c.rank
            );
        }
    }
}

fn sweep(inner: &str) {
    let reads = dataset();
    for p in [1usize, 2, 4] {
        for streaming in [false, true] {
            let clean = run_pipeline(&reads, p, &cfg(inner.parse().unwrap(), streaming));
            assert!(!clean.alignments.is_empty());
            assert_eq!(
                faults_survived(&clean),
                0,
                "clean {inner} P={p} must report zero fault counters"
            );
            for (si, kind) in ["corrupt", "drop", "mixed"].into_iter().enumerate() {
                let seed = 1000 + 100 * p as u64 + 10 * streaming as u64 + si as u64;
                let transport: TransportKind =
                    format!("faulty:{inner}:{seed}:{}", spec_for(kind, p)).parse().unwrap();
                let chaos = run_pipeline(&reads, p, &cfg(transport, streaming));
                let label = format!("{inner} P={p} streaming={streaming} {kind}");
                assert_work_identical(&label, &chaos, &clean);
                if streaming {
                    // Many rounds → injection is effectively certain (and
                    // exactly reproducible: a pure function of the seed).
                    assert!(faults_survived(&chaos) > 0, "{label}: no faults recorded");
                }
            }
        }
    }
}

#[test]
fn chaos_sweep_over_shared_memory() {
    sweep("shared");
}

#[test]
fn chaos_sweep_over_simulated_cori() {
    sweep("sim:cori:2");
}

/// A zero-rate faulty transport is fully transparent: identical output
/// and zero fault counters — the "only if" half of "counters nonzero iff
/// faults injected".
#[test]
fn zero_rate_chaos_is_transparent() {
    let reads = dataset();
    let clean = run_pipeline(&reads, 2, &cfg(TransportKind::SharedMem, true));
    let quiet: TransportKind = "faulty:shared:7:corrupt=0,drop=0".parse().unwrap();
    let chaos = run_pipeline(&reads, 2, &cfg(quiet, true));
    assert_work_identical("zero-rate", &chaos, &clean);
    assert_eq!(faults_survived(&chaos), 0);
}

/// Exhausted retries must fail the stage cleanly (a panic naming the
/// recovery path), not hang or emit damaged data.
#[test]
fn exhausted_retries_fail_the_stage_cleanly() {
    let reads = dataset();
    let transport: TransportKind = "faulty:shared:3:corrupt=1.0,retries=0".parse().unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_pipeline(&reads, 2, &cfg(transport, false))
    }));
    let payload = result.expect_err("a fully corrupting medium with no retries must fail");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("still damaged"),
        "stage failure should name the exhausted retransmit path, got: {msg}"
    );
}

/// Tentpole part 3 end to end: a *chaos* run writes stage checkpoints;
/// both a clean resume and a chaos resume reproduce its alignments
/// bit-identically while skipping stages 1–3.
#[test]
fn chaos_checkpoints_resume_bit_identically() {
    let reads = dataset();
    let dir = std::env::temp_dir()
        .join(format!("dibella-chaos-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let chaos_transport: TransportKind = "faulty:shared:11:mixed".parse().unwrap();
    let with_ckpt = |t: TransportKind| PipelineConfig {
        checkpoint_dir: Some(dir.clone()),
        ..cfg(t, true)
    };

    let first = run_pipeline(&reads, 2, &with_ckpt(chaos_transport));
    assert!(faults_survived(&first) > 0, "the chaos leg should have injected faults");

    // Clean resume: stages 1–3 skipped, identical alignments.
    let resumed = run_pipeline(&reads, 2, &with_ckpt(TransportKind::SharedMem));
    assert_eq!(resumed.alignments, first.alignments);
    for r in &resumed.reports {
        assert_eq!(r.overlap.rounds, 0, "resume must skip the overlap stage");
    }

    // Chaos resume: still identical — stage 4's exchanges recover too.
    let again = run_pipeline(&reads, 2, &with_ckpt("faulty:shared:13:mixed".parse().unwrap()));
    assert_eq!(again.alignments, first.alignments);

    std::fs::remove_dir_all(&dir).unwrap();
}
