//! Determinism of the whole threaded pipeline: every stage — k-mer
//! extraction, hash counting, overlap pair enumeration and alignment —
//! runs its compute through the shared batched executor, and for any
//! thread count every rank's outputs and work counters must be
//! bit-identical to the sequential run. This sweeps the full matrix the
//! executor promises: threads × transport (real shared memory and a
//! simulated interconnect) × streaming-round cap.

use dibella::prelude::*;

/// Overlapping reads off one deterministic pseudo-random genome.
fn dataset(n: usize, read_len: usize, stride: usize, seed: u64) -> ReadSet {
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let genome: Vec<u8> = (0..(n * stride + read_len))
        .map(|_| b"ACGT"[(rnd() % 4) as usize])
        .collect();
    (0..n as u32)
        .map(|i| {
            let s = i as usize * stride;
            Read::new(i, format!("r{i}"), genome[s..s + read_len].to_vec())
        })
        .collect()
}

fn cfg(threads: usize, transport: TransportKind, round_cap: usize) -> PipelineConfig {
    PipelineConfig {
        k: 11,
        seed_policy: SeedPolicy::MinDistance(11),
        max_seeds_per_pair: 32,
        max_multiplicity: Some(24),
        threads: Some(threads),
        transport,
        max_exchange_bytes_per_round: round_cap,
        ..Default::default()
    }
}

fn transports() -> [TransportKind; 2] {
    [TransportKind::SharedMem, "sim:cori:2".parse().expect("transport spec")]
}

/// At a fixed transport and round cap, every thread count must reproduce
/// the sequential run exactly: merged alignment records plus each rank's
/// per-stage work counters (extraction, filter, overlap, alignment) and
/// traffic totals.
#[test]
fn all_stages_bit_identical_across_threads() {
    let reads = dataset(24, 200, 60, 0x57A6E5);
    let ranks = 4;
    for transport in transports() {
        // usize::MAX = monolithic exchanges; 4096 forces several rounds
        // per stage, exercising the round-sliced batch decomposition.
        for cap in [usize::MAX, 4096] {
            let baseline = run_pipeline(&reads, ranks, &cfg(1, transport, cap));
            assert!(
                !baseline.alignments.is_empty(),
                "workload must exercise all stages (transport {transport}, cap {cap})"
            );
            for threads in [2usize, 4] {
                let run = run_pipeline(&reads, ranks, &cfg(threads, transport, cap));
                let at = format!("threads={threads} transport={transport} cap={cap}");
                assert_eq!(run.alignments, baseline.alignments, "records diverge at {at}");
                for (par, seq) in run.reports.iter().zip(&baseline.reports) {
                    let rank = par.rank;
                    assert_eq!(par.bloom, seq.bloom, "rank {rank} bloom counters, {at}");
                    assert_eq!(par.hash, seq.hash, "rank {rank} hash counters, {at}");
                    assert_eq!(par.table_keys, seq.table_keys, "rank {rank} table keys, {at}");
                    assert_eq!(par.filter, seq.filter, "rank {rank} filter stats, {at}");
                    assert_eq!(par.overlap, seq.overlap, "rank {rank} overlap counters, {at}");
                    assert_eq!(par.align, seq.align, "rank {rank} align counters, {at}");
                    for (p, s, stage) in [
                        (&par.bloom_comm, &seq.bloom_comm, "bloom"),
                        (&par.hash_comm, &seq.hash_comm, "hash"),
                        (&par.overlap_comm, &seq.overlap_comm, "overlap"),
                        (&par.align_comm, &seq.align_comm, "align"),
                    ] {
                        assert_eq!(
                            p.total_bytes(),
                            s.total_bytes(),
                            "rank {rank} {stage} bytes, {at}"
                        );
                        assert_eq!(
                            p.alltoallv_calls, s.alltoallv_calls,
                            "rank {rank} {stage} rounds, {at}"
                        );
                    }
                }
            }
        }
    }
}

/// The alignment-kernel implementation axis: pinning stage 4 to the
/// scalar kernel vs `Auto` (the lane-SIMD kernels) must never change the
/// pipeline output — merged alignment records and every rank's alignment
/// counters (including the `dp_cells` tally the cost model consumes) are
/// bit-identical across kernel implementations, at every thread count.
#[test]
fn simd_mode_bit_identical_across_kernels_and_threads() {
    use dibella::align::SimdMode;
    let reads = dataset(24, 200, 60, 0x51D_CAFE);
    let ranks = 4;
    let with_mode = |threads: usize, mode: SimdMode| PipelineConfig {
        simd: Some(mode),
        ..cfg(threads, TransportKind::SharedMem, usize::MAX)
    };
    let baseline = run_pipeline(&reads, ranks, &with_mode(1, SimdMode::Scalar));
    assert!(!baseline.alignments.is_empty(), "workload must reach the alignment stage");
    for mode in [SimdMode::Scalar, SimdMode::Auto] {
        for threads in [1usize, 2, 4] {
            let run = run_pipeline(&reads, ranks, &with_mode(threads, mode));
            let at = format!("simd={mode} threads={threads}");
            assert_eq!(run.alignments, baseline.alignments, "records diverge at {at}");
            for (par, seq) in run.reports.iter().zip(&baseline.reports) {
                let rank = par.rank;
                assert_eq!(par.align, seq.align, "rank {rank} align counters, {at}");
                assert_eq!(par.overlap, seq.overlap, "rank {rank} overlap counters, {at}");
            }
        }
    }
}

/// Across round caps the per-round decomposition changes (more, smaller
/// exchanges) but the final output must not — at any thread count.
#[test]
fn round_cap_does_not_change_threaded_output() {
    let reads = dataset(18, 200, 60, 0xCA9);
    let ranks = 3;
    let baseline = run_pipeline(
        &reads,
        ranks,
        &cfg(1, TransportKind::SharedMem, usize::MAX),
    );
    assert!(!baseline.alignments.is_empty());
    for threads in [1usize, 4] {
        for cap in [16 << 10, 2 << 10] {
            let run = run_pipeline(&reads, ranks, &cfg(threads, TransportKind::SharedMem, cap));
            assert_eq!(
                run.alignments, baseline.alignments,
                "records diverge at threads={threads} cap={cap}"
            );
        }
    }
}
